package qec

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/eval"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/search"
)

// Re-exported data types. External users cannot import the internal
// packages directly; these aliases are the public names.
type (
	// Document is one searchable unit (text or structured).
	Document = document.Document
	// Triplet is a structured (entity:attribute:value) feature.
	Triplet = document.Triplet
	// DocID identifies a document within an engine.
	DocID = document.DocID
	// Result is one ranked search hit.
	Result = search.Result
	// Query is a keyword query (a set of normalized terms).
	Query = search.Query
)

// Sentinel errors returned by Expand, for errors.Is classification (the HTTP
// layer maps them to 400 and 404).
var (
	// ErrEmptyQuery means the query analyzed to zero terms.
	ErrEmptyQuery = errors.New("qec: empty query")
	// ErrNoResults means the query matched no documents.
	ErrNoResults = errors.New("qec: no results")
	// ErrUnknownMethod means a method name matched no built-in method (and,
	// for ExpandOptions.MethodName, no registered custom backend).
	ErrUnknownMethod = errors.New("qec: unknown method")
)

// Quality selects the clustering speed/accuracy trade of the expansion
// pipeline (an alias of the internal cluster.Quality so it threads through
// ExpandOptions into ClusterOptions unconverted).
type Quality = cluster.Quality

const (
	// QualityExact (the default) runs clustering with the full restart
	// budget and exact assignment arithmetic: output is bit-identical to
	// the historical implementation for a fixed seed.
	QualityExact = cluster.QualityExact
	// QualityServing trades a deterministic accuracy delta for latency:
	// fewer k-means restarts and bound-pruned assignment. Runs remain
	// deterministic for a fixed seed, but results are not comparable to
	// QualityExact's.
	QualityServing = cluster.QualityServing
)

// ParseQuality maps a quality-mode name ("exact", "serving"; "" means exact)
// back to a Quality. Matching is case-insensitive; ok is false for unknown
// names.
func ParseQuality(s string) (Quality, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact":
		return QualityExact, true
	case "serving":
		return QualityServing, true
	default:
		return QualityExact, false
	}
}

// Method selects the expansion algorithm.
type Method int

const (
	// ISKR is iterative single-keyword refinement (paper Section 3) — the
	// default; best quality in the paper's experiments.
	ISKR Method = iota
	// PEBC is partial elimination based convergence (Section 4) — faster
	// on large result sets, slightly lower quality.
	PEBC
	// DeltaF is the exact-but-slow ISKR variant whose keyword values are
	// delta F-measures (the paper's "F-measure" comparison method).
	DeltaF
	// ORExpansion generates expanded queries under OR semantics (the
	// paper's appendix problem): keywords whose union of results covers the
	// cluster. The returned queries stand alone (they do not include the
	// original query's terms).
	ORExpansion
	// VectorNeighborhood expands toward the TF-IDF centroid of the top
	// results' term vectors: the centroid's heaviest non-query terms become
	// the suggestions (the embedding-search neighborhood recipe, computed on
	// the index's own arenas).
	VectorNeighborhood
	// LexicalSynonym expands through a WordNet-style synonym source: the
	// query terms' synonyms that exist in the corpus vocabulary, ranked by
	// F-measure against the result neighborhood (after Pal et al.).
	LexicalSynonym
	// Orthogonal picks mutually dissimilar expansions by greedy weighted
	// coverage of the result set — each suggestion targets results the
	// previous ones miss (after Ackerman et al.).
	Orthogonal
)

// ParseMethod maps a method name — a canonical wire string from Methods()
// or one of its aliases, case-insensitively; "" means the default (ISKR) —
// back to a Method. Unknown names return one canonical error wrapping
// ErrUnknownMethod and enumerating every valid method.
func ParseMethod(s string) (Method, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	if name == "" {
		return ISKR, nil
	}
	for _, mi := range methodRegistry {
		if name == mi.Name {
			return mi.Method, nil
		}
		for _, alias := range mi.Aliases {
			if name == alias {
				return mi.Method, nil
			}
		}
	}
	return ISKR, fmt.Errorf("%w %q (valid: %s)", ErrUnknownMethod, s, strings.Join(MethodNames(), ", "))
}

// String names the method.
func (m Method) String() string {
	switch m {
	case PEBC:
		return "PEBC"
	case DeltaF:
		return "DeltaF"
	case ORExpansion:
		return "OR-ISKR"
	case VectorNeighborhood:
		return "Vector"
	case LexicalSynonym:
		return "Lexical"
	case Orthogonal:
		return "Orthogonal"
	default:
		return "ISKR"
	}
}

// Engine is the top-level façade: a corpus, its index, and the expansion
// pipeline.
//
// Concurrency contract: mutation (AddText, AddProduct) must not overlap with
// any other Engine call — load the corpus first, from one goroutine. Once the
// corpus is loaded, Build, Search, Expand, Save and CacheStats are all safe
// for concurrent use from any number of goroutines; Build is idempotent (a
// sync.Once guards indexing), so concurrent callers race-freely share the one
// index build. AddText/AddProduct re-arm Build and invalidate the expansion
// cache, returning the engine to the mutation phase.
type Engine struct {
	corpus   *document.Corpus
	analyzer *analysis.Analyzer
	idx      *index.Index
	eng      *search.Engine
	seed     int64

	// buildOnce makes Build idempotent and safe for concurrent callers. It
	// is swapped for a fresh Once when the corpus mutates.
	buildOnce *sync.Once

	// expCache, when non-nil, memoizes Expand results keyed by the
	// normalized query plus all result-affecting options; flight coalesces
	// concurrent identical computations so N callers compute once.
	cacheCap     int
	expCache     *cache.Cache[string, *Expansion]
	flight       cache.Group[string, *Expansion]
	computations atomic.Int64

	// metrics is the engine's pipeline telemetry (see telemetry.go). Plain
	// embedded state — histograms and counters are lock-free, recording is
	// allocation-free, and nothing here feeds back into the pipeline.
	metrics ExpansionMetrics

	// synonyms feeds the lexical backend (nil = built-in demo table);
	// custom holds WithExpander-registered backends by lowercased name.
	// Both are configured at construction only — never mutated afterwards —
	// so concurrent Expand calls read them without synchronization.
	synonyms SynonymSource
	custom   map[string]Expander
}

// Option configures an Engine.
type Option func(*Engine)

// WithStemming switches to the full prose pipeline (lowercase, stopwords,
// Porter stemmer). The default pipeline skips stemming so structured feature
// values round-trip exactly.
func WithStemming() Option {
	return func(e *Engine) { e.analyzer = analysis.Standard() }
}

// WithSeed fixes the random seed used by clustering and PEBC (default 1).
func WithSeed(seed int64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithExpansionCache enables a sharded LRU cache of up to capacity Expand
// results, plus request coalescing: concurrent Expand calls for the same
// query and options compute once and share the result. Cached *Expansion
// values are shared between callers and must be treated as immutable.
// capacity <= 0 disables caching (the default).
func WithExpansionCache(capacity int) Option {
	return func(e *Engine) { e.cacheCap = capacity }
}

// NewEngine returns an empty engine.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		corpus:    document.NewCorpus(),
		analyzer:  analysis.Simple(),
		seed:      1,
		buildOnce: new(sync.Once),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.cacheCap > 0 {
		e.expCache = cache.New[string, *Expansion](e.cacheCap, cache.StringHash)
	}
	return e
}

// resetBuild returns the engine to the mutation phase: the index is dropped,
// Build is re-armed, and any cached expansions (now stale) are purged. Must
// not race with other Engine calls — see the concurrency contract on Engine.
func (e *Engine) resetBuild() {
	e.idx = nil
	e.eng = nil
	e.buildOnce = new(sync.Once)
	if e.expCache != nil {
		e.expCache.Purge()
	}
}

// AddText adds a prose document and returns its ID. Must be called before
// Build.
func (e *Engine) AddText(title, body string) DocID {
	e.resetBuild()
	return e.corpus.AddText(title, body)
}

// AddProduct adds a structured document with feature triplets and returns
// its ID. Must be called before Build.
func (e *Engine) AddProduct(title string, triplets []Triplet) DocID {
	e.resetBuild()
	return e.corpus.AddStructured(title, triplets)
}

// Len returns the number of documents.
func (e *Engine) Len() int { return e.corpus.Len() }

// Get returns a document by ID (nil when out of range).
func (e *Engine) Get(id DocID) *Document { return e.corpus.Get(id) }

// Build indexes the corpus. It is called implicitly by Search and Expand
// when needed; call it explicitly to control when the cost is paid. Build is
// idempotent and safe for concurrent callers: exactly one caller indexes,
// the rest wait for it, and every caller observes the finished index.
func (e *Engine) Build() {
	e.buildOnce.Do(func() {
		e.idx = index.Build(e.corpus, e.analyzer)
		e.eng = search.NewEngine(e.idx)
	})
}

// Search runs a keyword query (AND semantics) and returns results ranked by
// TF-IDF. topK <= 0 returns all results.
func (e *Engine) Search(raw string, topK int) []Result {
	e.Build()
	return e.eng.Search(search.ParseQuery(e.idx, raw), search.And, topK)
}

// Save writes the engine's index and corpus to w (gob format), so large
// corpora need not be re-indexed on every start.
func (e *Engine) Save(w io.Writer) error {
	e.Build()
	return e.idx.Save(w)
}

// LoadEngine restores an engine previously written by Save. Options must
// reproduce the original analyzer configuration (pass WithStemming if the
// saved engine used it).
func LoadEngine(r io.Reader, opts ...Option) (*Engine, error) {
	e := NewEngine(opts...)
	idx, err := index.Load(r, e.analyzer)
	if err != nil {
		return nil, err
	}
	e.corpus = idx.Corpus()
	e.idx = idx
	e.eng = search.NewEngine(idx)
	// The loaded index is the built state; burn the Once so a later Build
	// does not re-index over it.
	e.buildOnce.Do(func() {})
	return e, nil
}

// ExpandOptions configures Expand.
type ExpandOptions struct {
	// K is the maximum number of clusters / expanded queries (the
	// user-specified granularity of Section 1). 0 means 3.
	K int
	// TopK considers only the top-ranked results (the paper uses 30 for
	// large result sets). 0 means all results.
	TopK int
	// Method selects the algorithm (default ISKR).
	Method Method
	// MethodName, when non-empty, selects the backend by name instead of
	// Method: first the engine's WithExpander-registered custom backends,
	// then the built-in method names and aliases (see Methods). An unknown
	// name makes Expand fail with ErrUnknownMethod.
	MethodName string
	// Unweighted disables rank-weighted precision/recall.
	Unweighted bool
	// Parallel is retained for API compatibility: per-cluster expansion now
	// always fans out across a process-wide GOMAXPROCS worker budget
	// (degrading to serial under load) with index-order collection, so this
	// flag no longer changes behaviour (results were and remain identical
	// either way).
	Parallel bool
	// Interleave alternates expansion and cluster re-assignment (the
	// paper's future-work "interweaving" idea) for up to this many rounds;
	// 0 disables it.
	Interleave int
	// Quality selects the clustering speed/accuracy trade (default
	// QualityExact). QualityServing cuts cold-expansion latency at a
	// documented, deterministic accuracy delta — see the package
	// documentation's "clustering quality modes" section.
	Quality Quality
	// RestartBudget, when > 0, caps the number of k-means restarts after the
	// quality mode's own cap (it can only lower the count, never raise it).
	// The degradation ladder's T2+ tiers set 1. For a fixed
	// (Quality, RestartBudget) pair output stays bit-identical run to run.
	RestartBudget int
	// AggressiveAbandon tightens serving-mode early abandonment: a restart is
	// abandoned once its distortion exceeds 90% of the best finished restart's
	// (instead of 100%). No effect under QualityExact (abandonment is off
	// there). Deterministic for a fixed seed; set by the ladder's T2+ tiers.
	AggressiveAbandon bool
}

// ExpandedQuery is one expanded query with its quality against its cluster.
type ExpandedQuery struct {
	// Terms are the query keywords (the original query's terms first).
	Terms []string
	// Cluster is the ordinal of the cluster this query targets.
	Cluster int
	// Precision, Recall and F measure the query's results against the
	// cluster (rank-weighted unless Unweighted was set).
	Precision, Recall, F float64
}

// Expansion is the result of Expand: one query per cluster plus the overall
// Eq. 1 score.
type Expansion struct {
	// Original is the parsed user query.
	Original []string
	// Queries are the expanded queries, one per cluster.
	Queries []ExpandedQuery
	// Clusters holds the document IDs of each cluster.
	Clusters [][]DocID
	// Score is the harmonic mean of the queries' F-measures (Eq. 1).
	Score float64
}

// CacheStats is a snapshot of the expansion cache and coalescer counters.
// Without WithExpansionCache all fields are zero except Computations, which
// counts pipeline runs regardless of caching.
type CacheStats struct {
	// Hits, Misses and Evictions are the LRU cache counters.
	Hits, Misses, Evictions int64
	// Entries and Capacity are the cache's current and maximum sizes.
	Entries, Capacity int
	// Computations counts actual runs of the expansion pipeline.
	Computations int64
	// Coalesced counts Expand calls that shared another caller's in-flight
	// computation instead of running their own.
	Coalesced int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats reports the expansion cache and coalescer counters. Safe for
// concurrent use.
func (e *Engine) CacheStats() CacheStats {
	st := CacheStats{Computations: e.computations.Load()}
	if e.expCache == nil {
		return st
	}
	cs := e.expCache.Stats()
	st.Hits, st.Misses, st.Evictions = cs.Hits, cs.Misses, cs.Evictions
	st.Entries, st.Capacity = cs.Entries, cs.Capacity
	st.Coalesced = e.flight.Coalesced()
	return st
}

// expandKey canonicalizes (raw, opts) into a cache key: the parsed query's
// term list — produced by search.ParseQuery itself, so cache identity can
// never drift from query identity — plus every result-affecting option.
// The method leg is the backend's canonical label (custom backends are
// "x:"-prefixed), so two backends can never share a cached entry. Parallel
// is deliberately excluded — it changes scheduling, not results.
func (e *Engine) expandKey(raw string, opts ExpandOptions) string {
	e.Build()
	var sb strings.Builder
	for _, term := range search.ParseQuery(e.idx, raw).Terms {
		sb.WriteString(term)
		sb.WriteByte(' ')
	}
	fmt.Fprintf(&sb, "|k=%d|top=%d|m=%s|uw=%t|il=%d|q=%d|rb=%d|ab=%t",
		opts.K, opts.TopK, e.methodLeg(opts), opts.Unweighted, opts.Interleave,
		opts.Quality, opts.RestartBudget, opts.AggressiveAbandon)
	return sb.String()
}

// Expand runs the full pipeline of the paper on a user query: search,
// cluster the results, and generate one expanded query per cluster. With
// WithExpansionCache enabled, repeated calls are served from the LRU cache
// and concurrent identical calls are coalesced into one computation; the
// returned *Expansion is then shared and must be treated as immutable.
// ExpandTraced (telemetry.go) is the same call with a per-request trace and
// a cancellation context.
func (e *Engine) Expand(raw string, opts ExpandOptions) (*Expansion, error) {
	return e.ExpandTraced(context.Background(), raw, opts, nil)
}

// ExpandCached answers raw/opts from the expansion cache without ever running
// the pipeline: a hit returns the shared (immutable) cached Expansion, a miss
// — or an engine built without WithExpansionCache — returns (nil, false).
// This is the degradation ladder's cache-only (T3) read path.
func (e *Engine) ExpandCached(raw string, opts ExpandOptions) (*Expansion, bool) {
	if e.expCache == nil {
		return nil, false
	}
	e.Build()
	return e.expCache.Get(e.expandKey(raw, opts))
}

// expand is the uncached pipeline: the shared parse + search preamble, then
// the request's backend (see backendFor). Each stage runs between a
// Begin/End span pair so traces and the per-stage histograms see where the
// time went; the spans only read the clock — no pipeline arithmetic depends
// on them, so instrumented output is bit-identical to uninstrumented
// (pinned by TestInstrumentationBitIdentity and the expansion goldens).
func (e *Engine) expand(ctx context.Context, raw string, opts ExpandOptions, tr *obs.Trace) (*Expansion, error) {
	return e.expandFull(ctx, raw, opts, tr, nil)
}

// expandFull is expand with an optional EXPLAIN collector. ex == nil is the
// hot path — no collector state is touched, no extra allocations happen
// (pinned by BenchmarkExplainOff's benchdiff gate). With ex attached, the
// same code runs the same arithmetic and only records what it sees; the
// decision-trail legs are filled by the search layer (PruneStats), the
// clustering driver (cluster.Trail) and the solvers (core.Trail).
func (e *Engine) expandFull(ctx context.Context, raw string, opts ExpandOptions, tr *obs.Trace, ex *Explain) (*Expansion, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.computations.Add(1)
	e.Build()
	backend, slot, err := e.backendFor(opts)
	if err != nil {
		return nil, err
	}
	// Per-stage metrics want durations even for untraced calls: borrow a
	// pooled trace so the recording path is identical either way (and free
	// of per-request allocations at steady state).
	if tr == nil {
		tr = obs.GetTrace()
		defer obs.PutTrace(tr)
	}
	tr.MarkCache(obs.CacheComputed)
	start := time.Now()

	tr.Begin(obs.StageParse)
	q := search.ParseQuery(e.idx, raw)
	tr.End(obs.StageParse)
	if q.Len() == 0 {
		return nil, ErrEmptyQuery
	}

	// SearchPruned with a nil collector is exactly Search; with one, the
	// results are bit-identical and the pruning counters are recorded.
	var prune *search.PruneStats
	if ex != nil {
		prune = &search.PruneStats{}
	}
	tr.Begin(obs.StageSearch)
	results := e.eng.SearchPruned(q, search.And, opts.TopK, prune)
	tr.End(obs.StageSearch)
	if len(results) == 0 {
		return nil, fmt.Errorf("%w for %q", ErrNoResults, raw)
	}
	if ex != nil {
		ex.Query = q.Terms
		ex.Method = e.methodLeg(opts)
		ex.Quality = QualityLabel(QualityIndex(opts.Quality))
		ex.Results = len(results)
		ex.Search = explainSearch(opts.TopK, prune)
		if !prune.Pruned {
			ex.Notes = append(ex.Notes, "retrieval ran the full-scan path (no top-k bound); pruning counters are zero")
		}
	}

	out, err := backend.Expand(ExpandInput{
		Engine:  e,
		Query:   q,
		Results: results,
		Opts:    opts,
		Seed:    e.seed,
		ctx:     ctx,
		trace:   tr,
		explain: ex,
	})
	if err != nil {
		return nil, err
	}
	if ex != nil && ex.KMeans == nil && len(ex.Clusters) == 0 {
		ex.Notes = append(ex.Notes,
			"backend \""+backend.Name()+"\" does not expose a clustering/solver decision trail")
	}

	e.metrics.observe(opts, slot, tr, time.Since(start))
	return out, nil
}

// clusteredExpander runs the paper's pipeline — cluster the results, build
// one Definition 2.2 problem per cluster, solve with the selected core
// algorithm — behind the Expander interface. One instance per clustered
// Method lives in builtinExpanders; the body is the historical expand tail,
// so output is bit-identical to the pre-interface engine (pinned by the
// expansion goldens).
type clusteredExpander struct{ method Method }

func (c clusteredExpander) Name() string { return methodRegistry[c.method].Name }

func (c clusteredExpander) Expand(in ExpandInput) (*Expansion, error) {
	e, q, opts, tr := in.Engine, in.Query, in.Opts, in.trace
	k := in.SuggestionCount()

	tr.Begin(obs.StageProblem)
	var weights eval.Weights
	if !opts.Unweighted {
		weights = eval.Weights{}
		for _, r := range in.Results {
			weights[r.Doc] = r.Score
		}
	}
	// One resolved universe snapshot serves the whole request: clustering
	// consumes its document vectors and every per-cluster problem shares its
	// candidate pool and keyword incidence (previously recomputed per
	// cluster — see core.Universe).
	u := core.NewUniverse(e.idx, q, search.ResultIDs(in.Results), weights,
		core.DefaultPoolOptions())
	tr.End(obs.StageProblem)

	copts := cluster.Options{
		K: k, Seed: e.seed, PlusPlus: true, Restarts: 5, Quality: opts.Quality,
		RestartBudget:     opts.RestartBudget,
		AggressiveAbandon: opts.AggressiveAbandon,
		Ctx:               in.ctx,
	}
	if in.explain != nil {
		copts.Trail = &cluster.Trail{}
	}
	tr.Begin(obs.StageCluster)
	cl := cluster.KMeansVecs(e.idx.NumTerms(), u.Vectors(), u.Docs(), copts)
	tr.End(obs.StageCluster)
	tr.SetKMeans(cl.Restarts, cl.TotalIterations, cl.AbandonedRestarts)
	// A cancelled drive returned a partial clustering; discard it — partial
	// output must never be surfaced (or cached) as the query's expansion.
	if ctx := in.Context(); ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if in.explain != nil {
		in.explain.KMeans = explainKMeans(k, cl, copts.Trail)
	}

	// The core algorithm follows c.method — the dispatch identity, which
	// backendFor resolved from Method or MethodName — never opts.Method,
	// which may disagree when MethodName is set.
	var expander core.Expander
	switch c.method {
	case PEBC:
		expander = &core.PEBC{Seed: e.seed}
	case DeltaF:
		expander = &core.FMeasureVariant{}
	case ORExpansion:
		expander = &core.ORISKR{}
	default:
		expander = &core.ISKR{}
	}

	var res *core.QECResult
	var problems []*core.Problem
	if opts.Interleave > 0 {
		// Interleave alternates solving and re-clustering internally; its
		// rounds are accounted wholly to the solve stage.
		tr.Begin(obs.StageSolve)
		it := &core.Interleave{Expander: expander, MaxRounds: opts.Interleave, Universe: u}
		res = it.Run(e.idx, q, cl, weights).Result
		tr.End(obs.StageSolve)
		// Interleave's rounds are not ctx-aware; honor a cancellation that
		// arrived during the run before surfacing (and caching) the result.
		if ctx := in.Context(); ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if in.explain != nil {
			in.explain.Notes = append(in.explain.Notes,
				"interleave rounds rebuild problems internally; per-cluster solver trails are not collected")
		}
	} else {
		// Problem construction continues the "problem" span started for the
		// universe above; End accumulates across the two intervals.
		tr.Begin(obs.StageProblem)
		problems = u.Problems(cl.Sets())
		tr.End(obs.StageProblem)
		if in.explain != nil {
			// Attach a decision trail per problem. Recording is read-along
			// only (see core.Trail), so the solve below stays bit-identical.
			for _, p := range problems {
				p.Trail = &core.Trail{}
			}
		}
		// Solve fans per-cluster work across the process-wide worker budget
		// (serial under contention), so the Parallel flag needs no branch.
		// SolveCtx checks the context at cluster boundaries; a cancelled
		// solve errors out here instead of assembling a partial expansion.
		tr.Begin(obs.StageSolve)
		var serr error
		res, serr = core.SolveCtx(in.Context(), expander, problems)
		tr.End(obs.StageSolve)
		if serr != nil {
			return nil, serr
		}
	}

	tr.Begin(obs.StageAssemble)
	out := &Expansion{
		Original: q.Terms,
		Clusters: cl.Clusters,
		Score:    res.Score,
	}
	for i, ce := range res.Expansions {
		out.Queries = append(out.Queries, ExpandedQuery{
			Terms:     ce.Expanded.Query.Terms,
			Cluster:   i,
			Precision: ce.Expanded.PRF.Precision,
			Recall:    ce.Expanded.PRF.Recall,
			F:         ce.Expanded.PRF.F,
		})
	}
	tr.End(obs.StageAssemble)
	if in.explain != nil {
		c.explainClusters(in.explain, out, cl, res, problems)
	}
	return out, nil
}

// explainClusters fills the per-cluster solver leg of an Explain from the
// solve's decision trails. It runs after the Expansion has been assembled,
// so the extra F-measure evaluations it performs (candidate-pool F-if-added
// lines) cannot influence the returned result.
func (c clusteredExpander) explainClusters(ex *Explain, out *Expansion,
	cl *cluster.Clustering, res *core.QECResult, problems []*core.Problem) {

	for i, ce := range res.Expansions {
		cx := ClusterExplain{
			Cluster: i,
			Label:   ce.Expanded.Query.Terms,
			F:       ce.Expanded.PRF.F,
		}
		if i < len(cl.Clusters) {
			cx.Size = len(cl.Clusters[i])
		}
		if problems != nil && i < len(problems) && problems[i].Trail != nil {
			p, trail := problems[i], problems[i].Trail
			cx.Pool = keywordExplainTable(p, p.UserQuery, trail.Pool)
			cx.Rejected = keywordExplainTable(p, ce.Expanded.Query, trail.Rejected)
			// Picked: the final query's terms beyond the seed query, each
			// with its initial candidate line from the pool table.
			for _, term := range ce.Expanded.Query.Terms {
				if p.UserQuery.Contains(term) {
					continue
				}
				picked := KeywordExplain{Keyword: term, F: ce.Expanded.PRF.F}
				for _, row := range cx.Pool {
					if row.Keyword == term {
						picked = row
						break
					}
				}
				cx.Picked = append(cx.Picked, picked)
			}
			for _, s := range trail.Steps {
				v, inf := finiteValue(s.Value)
				cx.Steps = append(cx.Steps, StepExplain{
					Op: s.Op, Keyword: s.Keyword, Value: v, Infinite: inf, F: s.F,
				})
			}
			for _, s := range trail.Samples {
				cx.Samples = append(cx.Samples, SampleExplain{X: s.X, Terms: s.Terms, F: s.F})
			}
		}
		ex.Clusters = append(ex.Clusters, cx)
	}
}
