package qec_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	qec "repro"
)

// TestDocsMethodConsistency pins the docs to the method registry: every
// registered method name must appear (backticked, as in the matrices) in
// the README and in docs/EXPANDERS.md, and every alias in docs/EXPANDERS.md
// — so adding a backend without documenting it fails CI.
func TestDocsMethodConsistency(t *testing.T) {
	read := func(path string) string {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return string(b)
	}
	readme := read("README.md")
	expanders := read("docs/EXPANDERS.md")

	for _, mi := range qec.Methods() {
		token := fmt.Sprintf("`%s`", mi.Name)
		if !strings.Contains(readme, token) {
			t.Errorf("README.md is missing method %s", token)
		}
		if !strings.Contains(expanders, token) {
			t.Errorf("docs/EXPANDERS.md is missing method %s", token)
		}
		for _, alias := range mi.Aliases {
			if !strings.Contains(expanders, fmt.Sprintf("`%s`", alias)) {
				t.Errorf("docs/EXPANDERS.md is missing alias `%s` of %s", alias, token)
			}
		}
	}
}
