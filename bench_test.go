package qec

// One benchmark per table and figure of the paper's evaluation (Section 5),
// plus ablation benches for the design choices DESIGN.md calls out. Quality
// metrics (Eq. 1 scores, user-study means) are attached to the benchmark
// output via b.ReportMetric, so `go test -bench=.` regenerates both the
// timing and the quality side of every figure.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/search"
)

var (
	benchOnce   sync.Once
	benchRunner *experiment.Runner
	benchStudy  *experiment.Study
)

func sharedBench(b *testing.B) (*experiment.Runner, *experiment.Study) {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner = experiment.NewRunner(experiment.DefaultConfig())
		benchStudy = benchRunner.RunStudy()
	})
	return benchRunner, benchStudy
}

// --- Table 1 ----------------------------------------------------------------

func BenchmarkTable1QuerySets(b *testing.B) {
	r, _ := sharedBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wiki, shop := r.Table1()
		if len(wiki) != 10 || len(shop) != 10 {
			b.Fatal("bad table 1")
		}
	}
}

// --- Figures 1-4: simulated user study --------------------------------------

func BenchmarkFigure1IndividualScores(b *testing.B) {
	_, s := sharedBench(b)
	b.ResetTimer()
	var rows []experiment.MethodSummary
	for i := 0; i < b.N; i++ {
		rows = s.Figure1And2()
	}
	for _, ms := range rows {
		b.ReportMetric(ms.Summary.MeanScore, "score_"+ms.Method)
	}
}

func BenchmarkFigure2IndividualOptions(b *testing.B) {
	_, s := sharedBench(b)
	b.ResetTimer()
	var rows []experiment.MethodSummary
	for i := 0; i < b.N; i++ {
		rows = s.Figure1And2()
	}
	for _, ms := range rows {
		b.ReportMetric(ms.Summary.PctA, "pctA_"+ms.Method)
	}
}

func BenchmarkFigure3CollectiveScores(b *testing.B) {
	_, s := sharedBench(b)
	b.ResetTimer()
	var rows []experiment.MethodSummary
	for i := 0; i < b.N; i++ {
		rows = s.Figure3And4()
	}
	for _, ms := range rows {
		b.ReportMetric(ms.Summary.MeanScore, "score_"+ms.Method)
	}
}

func BenchmarkFigure4CollectiveOptions(b *testing.B) {
	_, s := sharedBench(b)
	b.ResetTimer()
	var rows []experiment.MethodSummary
	for i := 0; i < b.N; i++ {
		rows = s.Figure3And4()
	}
	for _, ms := range rows {
		b.ReportMetric(ms.Summary.PctC, "pctC_"+ms.Method)
	}
}

// --- Figure 5: Eq. 1 scores (the expansion work itself is benchmarked) ------

func benchFigure5(b *testing.B, ds string) {
	r, s := sharedBench(b)
	// Prepared query runs for the dataset (outside the timer).
	var runs []*experiment.QueryRun
	d := r.Shopping
	if ds == "wikipedia" {
		d = r.Wiki
	}
	for _, tq := range d.Queries {
		runs = append(runs, r.Prepare(d, tq))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qr := range runs {
			for _, p := range qr.Problems {
				(&core.ISKR{}).Expand(p)
				(&core.PEBC{Segments: 3, Iterations: 3, Seed: r.Config.Seed}).Expand(p)
			}
		}
	}
	b.StopTimer()
	var iskr, pebc float64
	for _, row := range s.Figure5(ds) {
		iskr += row.Scores[experiment.MethodISKR]
		pebc += row.Scores[experiment.MethodPEBC]
	}
	b.ReportMetric(iskr/10, "meanEq1_ISKR")
	b.ReportMetric(pebc/10, "meanEq1_PEBC")
}

func BenchmarkFigure5aShoppingScores(b *testing.B)  { benchFigure5(b, "shopping") }
func BenchmarkFigure5bWikipediaScores(b *testing.B) { benchFigure5(b, "wikipedia") }

// --- Figure 6: per-method expansion time ------------------------------------

func benchFigure6Method(b *testing.B, ds string, method string) {
	r, _ := sharedBench(b)
	d := r.Shopping
	if ds == "wikipedia" {
		d = r.Wiki
	}
	var runs []*experiment.QueryRun
	for _, tq := range d.Queries {
		runs = append(runs, r.Prepare(d, tq))
	}
	var ex core.Expander
	switch method {
	case "ISKR":
		ex = &core.ISKR{}
	case "PEBC":
		ex = &core.PEBC{Segments: 3, Iterations: 3, Seed: r.Config.Seed}
	case "F-measure":
		ex = &core.FMeasureVariant{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qr := range runs {
			core.Solve(ex, qr.Problems)
		}
	}
}

func BenchmarkFigure6aShoppingTimeISKR(b *testing.B) { benchFigure6Method(b, "shopping", "ISKR") }
func BenchmarkFigure6aShoppingTimePEBC(b *testing.B) { benchFigure6Method(b, "shopping", "PEBC") }
func BenchmarkFigure6aShoppingTimeFMeasure(b *testing.B) {
	benchFigure6Method(b, "shopping", "F-measure")
}
func BenchmarkFigure6bWikipediaTimeISKR(b *testing.B) { benchFigure6Method(b, "wikipedia", "ISKR") }
func BenchmarkFigure6bWikipediaTimePEBC(b *testing.B) { benchFigure6Method(b, "wikipedia", "PEBC") }
func BenchmarkFigure6bWikipediaTimeFMeasure(b *testing.B) {
	benchFigure6Method(b, "wikipedia", "F-measure")
}

// --- Figure 7: scalability ---------------------------------------------------

func BenchmarkFigure7Scalability(b *testing.B) {
	r, _ := sharedBench(b)
	b.ResetTimer()
	var rows []experiment.ScalabilityRow
	for i := 0; i < b.N; i++ {
		rows = r.Figure7([]int{100, 300, 500})
	}
	b.StopTimer()
	for _, row := range rows {
		b.ReportMetric(float64(row.ISKR.Milliseconds()), "iskr_ms_n"+itoa(row.NumResults))
		b.ReportMetric(float64(row.PEBC.Milliseconds()), "pebc_ms_n"+itoa(row.NumResults))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Figures 8-9: listings ----------------------------------------------------

func BenchmarkFigure8Listing(b *testing.B) {
	_, s := sharedBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Listing()) != 120 {
			b.Fatal("bad listing")
		}
	}
}

// --- §5.3 clustering-time prose ------------------------------------------------

func benchClusteringTime(b *testing.B, ds *dataset.Dataset, raw string, topK int) {
	eng := search.NewEngine(ds.Index)
	q := search.ParseQuery(ds.Index, raw)
	ids := search.ResultSet(eng.Search(q, search.And, topK)).IDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans(ds.Index, ids, cluster.Options{K: 3, Seed: 1, PlusPlus: true})
	}
}

func BenchmarkClusteringTimeShopping(b *testing.B) {
	r, _ := sharedBench(b)
	benchClusteringTime(b, r.Shopping, "memory", 0)
}

func BenchmarkClusteringTimeWikipedia(b *testing.B) {
	r, _ := sharedBench(b)
	benchClusteringTime(b, r.Wiki, "columbia", 30)
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------------

// ablationProblems returns the prepared QW2 problems — a midsize messy
// instance shared by the ablation benches.
func ablationProblems(b *testing.B) []*core.Problem {
	r, _ := sharedBench(b)
	qr := r.Prepare(r.Wiki, dataset.TestQuery{ID: "QW2", Raw: "columbia"})
	return qr.Problems
}

func benchPEBCStrategy(b *testing.B, strategy core.SelectionStrategy) {
	problems := ablationProblems(b)
	ex := &core.PEBC{Strategy: strategy, Seed: 9}
	b.ResetTimer()
	var score float64
	for i := 0; i < b.N; i++ {
		res := core.Solve(ex, problems)
		score = res.Score
	}
	b.ReportMetric(score, "eq1")
}

func BenchmarkAblationPEBCSelectionSingleResult(b *testing.B) {
	benchPEBCStrategy(b, core.SelectSingleResult)
}
func BenchmarkAblationPEBCSelectionFixedOrder(b *testing.B) {
	benchPEBCStrategy(b, core.SelectFixedOrder)
}
func BenchmarkAblationPEBCSelectionSubset(b *testing.B) {
	benchPEBCStrategy(b, core.SelectSubset)
}

func BenchmarkAblationISKRNoRemoval(b *testing.B) {
	problems := ablationProblems(b)
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = core.Solve(&core.ISKR{}, problems).Score
		without = core.Solve(&core.ISKR{DisableRemoval: true}, problems).Score
	}
	b.ReportMetric(with, "eq1_with_removal")
	b.ReportMetric(without, "eq1_no_removal")
}

func BenchmarkAblationWeighted(b *testing.B) {
	r, _ := sharedBench(b)
	qr := r.Prepare(r.Wiki, dataset.TestQuery{ID: "QW5", Raw: "eclipse"})
	q := qr.Query
	// Rebuild problems without rank weights for the unweighted arm.
	unweighted := core.BuildProblems(r.Wiki.Index, q, qr.Clustering, nil,
		core.DefaultPoolOptions())
	b.ResetTimer()
	var w, uw float64
	for i := 0; i < b.N; i++ {
		w = core.Solve(&core.ISKR{}, qr.Problems).Score
		uw = core.Solve(&core.ISKR{}, unweighted).Score
	}
	b.ReportMetric(w, "eq1_weighted")
	b.ReportMetric(uw, "eq1_unweighted")
}

func BenchmarkAblationClustering(b *testing.B) {
	r, _ := sharedBench(b)
	eng := search.NewEngine(r.Wiki.Index)
	q := search.ParseQuery(r.Wiki.Index, "mouse")
	results := eng.Search(q, search.And, 30)
	ids := search.ResultSet(results).IDs()
	weights := eval.Weights{}
	for _, res := range results {
		weights[res.Doc] = res.Score
	}
	b.ResetTimer()
	var km, agg float64
	for i := 0; i < b.N; i++ {
		ck := cluster.KMeans(r.Wiki.Index, ids, cluster.Options{K: 3, Seed: 1, PlusPlus: true, Restarts: 5})
		km = core.Solve(&core.ISKR{}, core.BuildProblems(r.Wiki.Index, q, ck, weights, core.DefaultPoolOptions())).Score
		ca := cluster.Agglomerative(r.Wiki.Index, ids, 3, cluster.AverageLinkage)
		agg = core.Solve(&core.ISKR{}, core.BuildProblems(r.Wiki.Index, q, ca, weights, core.DefaultPoolOptions())).Score
	}
	b.ReportMetric(km, "eq1_kmeans")
	b.ReportMetric(agg, "eq1_agglomerative")
}

func BenchmarkAblationPEBCBudget(b *testing.B) {
	problems := ablationProblems(b)
	b.ResetTimer()
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = core.Solve(&core.PEBC{Segments: 3, Iterations: 3, Seed: 9}, problems).Score
		large = core.Solve(&core.PEBC{Segments: 5, Iterations: 5, Seed: 9}, problems).Score
	}
	b.ReportMetric(small, "eq1_3x3")
	b.ReportMetric(large, "eq1_5x5")
}

// --- Extensions (OR semantics, interleaving, parallel solve) --------------------

func BenchmarkExtensionORISKR(b *testing.B) {
	problems := ablationProblems(b)
	b.ResetTimer()
	var score float64
	for i := 0; i < b.N; i++ {
		score = core.Solve(&core.ORISKR{}, problems).Score
	}
	b.ReportMetric(score, "eq1_or")
}

func BenchmarkExtensionInterleave(b *testing.B) {
	r, _ := sharedBench(b)
	qr := r.Prepare(r.Wiki, dataset.TestQuery{ID: "QW9", Raw: "mouse"})
	it := &core.Interleave{MaxRounds: 4}
	b.ResetTimer()
	var oneShot, interleaved float64
	for i := 0; i < b.N; i++ {
		oneShot = core.Solve(&core.ISKR{}, qr.Problems).Score
		interleaved = it.Run(r.Wiki.Index, qr.Query, qr.Clustering, qr.Weights).Result.Score
	}
	b.ReportMetric(oneShot, "eq1_oneshot")
	b.ReportMetric(interleaved, "eq1_interleaved")
}

func BenchmarkExtensionSolveParallel(b *testing.B) {
	problems := ablationProblems(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SolveParallel(&core.ISKR{}, problems)
	}
}

func BenchmarkExtensionDynamicClusteringSelection(b *testing.B) {
	r, _ := sharedBench(b)
	eng := search.NewEngine(r.Wiki.Index)
	q := search.ParseQuery(r.Wiki.Index, "domino")
	ids := search.ResultSet(eng.Search(q, search.And, 30)).IDs()
	b.ResetTimer()
	var score float64
	for i := 0; i < b.N; i++ {
		cands := core.DefaultClusteringCandidates(r.Wiki.Index, ids, 3, 1)
		_, res := core.SelectClustering(r.Wiki.Index, q, cands, nil,
			core.DefaultPoolOptions(), nil)
		score = res.Score
	}
	b.ReportMetric(score, "eq1_selected")
}

// --- Public API end-to-end -----------------------------------------------------

func BenchmarkEngineExpandEndToEnd(b *testing.B) {
	e := NewEngine(WithSeed(3))
	d := dataset.Wikipedia(3, 1)
	for _, doc := range d.Corpus.Docs() {
		e.AddText(doc.Title, doc.Body)
	}
	e.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Expand("java", ExpandOptions{K: 3, TopK: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Cold expansion by corpus size ----------------------------------------------

// benchColdExpansion runs the full uncached pipeline (search + k-means with
// restarts + ISKR) over a Wikipedia corpus scaled by the given factor, with
// no TopK cap so the clustered result set grows with the corpus (the
// Figure 7 scalability axis).
func benchColdExpansion(b *testing.B, scale int) {
	e := NewEngine(WithSeed(3))
	d := dataset.Wikipedia(3, scale)
	for _, doc := range d.Corpus.Docs() {
		e.AddText(doc.Title, doc.Body)
	}
	e.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Expand("java", ExpandOptions{K: 3, TopK: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdExpansionScale1(b *testing.B) { benchColdExpansion(b, 1) }
func BenchmarkColdExpansionScale2(b *testing.B) { benchColdExpansion(b, 2) }
func BenchmarkColdExpansionScale4(b *testing.B) { benchColdExpansion(b, 4) }

// --- Exact top-K retrieval -------------------------------------------------------

var (
	deepOnce sync.Once
	deepData *dataset.Dataset
	deepEng  *search.Engine
)

// deepSearchBench is a heavily scaled Wikipedia corpus — posting lists span
// many score blocks, so the block-max pruning actually has blocks to skip.
func deepSearchBench(b *testing.B) (*search.Engine, *dataset.Dataset) {
	b.Helper()
	deepOnce.Do(func() {
		deepData = dataset.Wikipedia(3, 16)
		deepEng = search.NewEngine(deepData.Index)
	})
	return deepEng, deepData
}

// benchSearchTopK measures one (semantics, topK) cell of the pruned exact
// top-K path; topK 0 is the full-scoring reference the pruned cells are
// measured against (pre-pruning, every topK paid this).
func benchSearchTopK(b *testing.B, sem search.Semantics, topK int) {
	eng, d := deepSearchBench(b)
	q := search.ParseQuery(d.Index, "java software platform")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := eng.Search(q, sem, topK); len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSearchTopKDeepAnd10(b *testing.B)   { benchSearchTopK(b, search.And, 10) }
func BenchmarkSearchTopKDeepAnd100(b *testing.B)  { benchSearchTopK(b, search.And, 100) }
func BenchmarkSearchTopKDeepAndFull(b *testing.B) { benchSearchTopK(b, search.And, 0) }
func BenchmarkSearchTopKDeepOr10(b *testing.B)    { benchSearchTopK(b, search.Or, 10) }
func BenchmarkSearchTopKDeepOr100(b *testing.B)   { benchSearchTopK(b, search.Or, 100) }
func BenchmarkSearchTopKDeepOrFull(b *testing.B)  { benchSearchTopK(b, search.Or, 0) }

// BenchmarkSearchOrMerge measures the unscored OR union on its own: the
// k-way sorted posting merge that replaced the map-backed accumulator
// (Eval returns ascending IDs with one allocation).
func BenchmarkSearchOrMerge(b *testing.B) {
	eng, d := deepSearchBench(b)
	q := search.ParseQuery(d.Index, "java software platform")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ids := eng.Eval(q, search.Or); len(ids) == 0 {
			b.Fatal("empty union")
		}
	}
}

// --- Observability overhead -----------------------------------------------------

// BenchmarkColdExpansionInstrumented is BenchmarkColdExpansionScale1 with a
// caller-supplied trace attached — the fully-instrumented serving path,
// recording six stage spans, the cache disposition, k-means bookkeeping and
// the engine's latency histograms per op. The benchdiff gates pin it within
// 5% ns/op and zero extra allocs/op of the uninstrumented cold path.
func BenchmarkColdExpansionInstrumented(b *testing.B) {
	e := NewEngine(WithSeed(3))
	d := dataset.Wikipedia(3, 1)
	for _, doc := range d.Corpus.Docs() {
		e.AddText(doc.Title, doc.Body)
	}
	e.Build()
	tr := obs.GetTrace()
	defer obs.PutTrace(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := e.ExpandTraced(context.Background(), "java", ExpandOptions{K: 3, TopK: 0}, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExplainOff is BenchmarkColdExpansionInstrumented run through the
// post-explain pipeline with explain off — every stage now carries nil-guarded
// trail collectors (search.PruneStats, cluster trail, solver trail, the
// explain pointer on ExpandInput), and this benchmark pins their disabled
// cost. The benchdiff gates hold it within 5% ns/op and zero extra allocs/op
// of the instrumented cold path: asking for explainability must cost nothing
// until a request actually asks to be explained.
func BenchmarkExplainOff(b *testing.B) {
	e := NewEngine(WithSeed(3))
	d := dataset.Wikipedia(3, 1)
	for _, doc := range d.Corpus.Docs() {
		e.AddText(doc.Title, doc.Body)
	}
	e.Build()
	tr := obs.GetTrace()
	defer obs.PutTrace(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := e.ExpandTraced(context.Background(), "java", ExpandOptions{K: 3, TopK: 0}, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead isolates the telemetry layer's fixed per-request cost:
// a pooled trace cycle, six Begin/End stage spans, the cache mark, k-means
// bookkeeping and the full ExpansionMetrics record. The benchdiff alloc gate
// holds this at zero allocations per op.
func BenchmarkObsOverhead(b *testing.B) {
	var m ExpansionMetrics
	opts := ExpandOptions{K: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.GetTrace()
		tr.MarkCache(obs.CacheComputed)
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			tr.Begin(s)
			tr.End(s)
		}
		tr.SetKMeans(5, 16, 0)
		m.observe(opts, int(opts.Method), tr, time.Microsecond)
		obs.PutTrace(tr)
	}
}

// --- Index substrate: term dictionary, postings arena, pool scoring -------------

// BenchmarkTermDictLookup measures one string→TermID resolution against the
// Wikipedia corpus dictionary — the once-per-query cost search pays to leave
// string space.
func BenchmarkTermDictLookup(b *testing.B) {
	r, _ := sharedBench(b)
	dict := r.Wiki.Index.Dict()
	terms := dict.Terms()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		if _, ok := dict.Lookup(terms[i%len(terms)]); ok {
			hits++
		}
	}
	if hits != b.N {
		b.Fatal("dictionary lost terms")
	}
}

// BenchmarkPostingsIter sweeps the entire postings arena (every term's raw
// []int32 doc slice and aligned freqs) once per op — the substrate cost
// under the AND merge and the relatedness probes.
func BenchmarkPostingsIter(b *testing.B) {
	r, _ := sharedBench(b)
	idx := r.Wiki.Index
	nt := idx.NumTerms()
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		for t := 0; t < nt; t++ {
			docs := idx.PostingsDocs(int32(t))
			freqs := idx.PostingsFreqs(int32(t))
			for j := range docs {
				total += int(docs[j]) + int(freqs[j])
			}
		}
	}
	if total == 0 {
		b.Fatal("empty postings")
	}
}

// BenchmarkPoolScoring measures candidate-pool selection (NewProblem's
// scoring phase) on QW2 "columbia": a flat TF-IDF accumulation over global
// TermIDs. The allocs/op ceiling pinned by the benchdiff gate guards the
// "zero map allocations" property — reintroducing a string map here would
// blow the gate.
func BenchmarkPoolScoring(b *testing.B) {
	r, _ := sharedBench(b)
	d := r.Wiki
	eng := search.NewEngine(d.Index)
	q := search.ParseQuery(d.Index, "columbia")
	universe := search.ResultSet(eng.Search(q, search.And, 30)).IDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pool := core.ScorePool(d.Index, q, universe, core.DefaultPoolOptions()); len(pool) == 0 {
			b.Fatal("empty pool")
		}
	}
}

// --- Serving path: cold vs cached vs coalesced Expand ---------------------------

// servingEngine is the Wikipedia corpus behind the serving benches.
func servingEngine(b *testing.B, opts ...Option) *Engine {
	b.Helper()
	e := NewEngine(append([]Option{WithSeed(3)}, opts...)...)
	d := dataset.Wikipedia(3, 1)
	for _, doc := range d.Corpus.Docs() {
		e.AddText(doc.Title, doc.Body)
	}
	e.Build()
	return e
}

var servingOpts = ExpandOptions{K: 3, TopK: 30}

// BenchmarkExpandServingCold is the no-cache baseline: every request pays the
// full search + k-means + ISKR pipeline.
func BenchmarkExpandServingCold(b *testing.B) {
	e := servingEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Expand("java", servingOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandServingCached measures a repeat request to a warm cache —
// the steady state for popular ambiguous queries. The acceptance bar is a
// >= 10x speedup over BenchmarkExpandServingCold.
func BenchmarkExpandServingCached(b *testing.B) {
	e := servingEngine(b, WithExpansionCache(64))
	if _, err := e.Expand("java", servingOpts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Expand("java", servingOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandServingCoalesced measures a 32-way thundering herd on a cold
// key: each op purges the cache and fires 32 concurrent identical requests,
// which the singleflight group collapses into one computation
// (computations/op stays at ~1, not 32).
func BenchmarkExpandServingCoalesced(b *testing.B) {
	e := servingEngine(b, WithExpansionCache(64))
	const fanout = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e.expCache.Purge()
		b.StartTimer()
		var wg sync.WaitGroup
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := e.Expand("java", servingOpts); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	b.ReportMetric(float64(e.computations.Load())/float64(b.N), "computations/op")
	b.ReportMetric(fanout, "requests/op")
}
