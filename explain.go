package qec

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/search"
)

// Explain is the structured decision trail of one expansion request: what
// the retrieval pruned, how the k-means restarts fared, which candidate
// keywords each cluster's solver saw, which it picked, and what every
// rejected alternative scored. Produced by Engine.ExpandExplained.
//
// Collection is strictly read-along: the pipeline runs the same arithmetic
// in the same order whether or not it is being explained, so the Expansion
// returned next to an Explain is bit-identical to an unexplained run
// (pinned by TestExpandExplainedBitIdentical).
type Explain struct {
	// Query is the parsed user query.
	Query []string `json:"query"`
	// Method and Quality are the resolved method and quality labels.
	Method  string `json:"method"`
	Quality string `json:"quality"`
	// Results is the retrieved universe size the pipeline worked on.
	Results int `json:"results"`
	// Search is the retrieval leg: the top-K pruning counters.
	Search SearchExplain `json:"search"`
	// KMeans is the clustering leg (nil for backends that do not cluster).
	KMeans *KMeansExplain `json:"kmeans,omitempty"`
	// Clusters is the per-cluster solver leg, aligned with the returned
	// Expansion's Queries.
	Clusters []ClusterExplain `json:"clusters,omitempty"`
	// Notes lists legs the request's shape left empty (interleave rounds,
	// non-clustered backends).
	Notes []string `json:"notes,omitempty"`
}

// SearchExplain mirrors the search layer's pruning counters (see
// search.PruneStats) for the request's preamble retrieval.
type SearchExplain struct {
	// TopK is the retrieval depth (0 = full scan, no pruning possible).
	TopK int `json:"top_k"`
	// Pruned reports whether a block-max pruned path ran.
	Pruned bool `json:"pruned"`
	// BlocksSkipped counts driving-list blocks skipped wholesale;
	// CursorAdvances counts posting-cursor moves; DocsScored and
	// DocsSkipped split the surviving candidates.
	BlocksSkipped  int `json:"blocks_skipped"`
	CursorAdvances int `json:"cursor_advances"`
	DocsScored     int `json:"docs_scored"`
	DocsSkipped    int `json:"docs_skipped"`
	// Thresholds is the heap-threshold trajectory: the K-th best score
	// each time it changed, oldest first (capped).
	Thresholds []float64 `json:"thresholds,omitempty"`
}

// KMeansExplain is the clustering leg: the winning distortion and each
// restart's fate under the lockstep driver.
type KMeansExplain struct {
	// K is the requested cluster count.
	K int `json:"k"`
	// Distortion is the winning restart's final distortion.
	Distortion float64 `json:"distortion"`
	// Iterations totals refinement rounds across all restarts.
	Iterations int `json:"iterations"`
	// Restarts details each restart in launch order.
	Restarts []RestartExplain `json:"restarts"`
}

// RestartExplain is one k-means restart's fate.
type RestartExplain struct {
	Seed       int64   `json:"seed"`
	Iterations int     `json:"iterations"`
	Distortion float64 `json:"distortion"`
	Abandoned  bool    `json:"abandoned"`
	Won        bool    `json:"won"`
}

// ClusterExplain is one cluster's solver decision trail.
type ClusterExplain struct {
	// Cluster is the cluster ordinal (matching ExpandedQuery.Cluster).
	Cluster int `json:"cluster"`
	// Size is the cluster's document count.
	Size int `json:"size"`
	// Label is the cluster's picked expanded query — its human-readable
	// identity.
	Label []string `json:"label"`
	// F is the picked query's F-measure against the cluster.
	F float64 `json:"f"`
	// Pool is the initial candidate table: benefit, cost, value and
	// F-if-added for every pool keyword.
	Pool []KeywordExplain `json:"pool,omitempty"`
	// Picked are the keywords the solver added (in application order for
	// ISKR); Rejected is the final candidate table for keywords that did
	// not make the query, with what each would have scored.
	Picked   []KeywordExplain `json:"picked,omitempty"`
	Rejected []KeywordExplain `json:"rejected,omitempty"`
	// Steps are ISKR's applied moves in order.
	Steps []StepExplain `json:"steps,omitempty"`
	// Samples are PEBC's partial-elimination probes in generation order.
	Samples []SampleExplain `json:"samples,omitempty"`
}

// KeywordExplain is one candidate keyword's scoring line.
type KeywordExplain struct {
	Keyword string  `json:"keyword"`
	Benefit float64 `json:"benefit"`
	Cost    float64 `json:"cost"`
	// Value is benefit/cost under the paper's conventions; when the true
	// ratio is +Inf (benefit at zero cost) Value is 0 and Infinite is set,
	// because JSON has no Inf literal.
	Value    float64 `json:"value"`
	Infinite bool    `json:"infinite,omitempty"`
	// F is the F-measure of the query with this keyword added (the pool
	// table adds to the seed query; the rejected table to the final one).
	F float64 `json:"f"`
}

// StepExplain is one applied ISKR move.
type StepExplain struct {
	// Op is "add" or "remove".
	Op      string `json:"op"`
	Keyword string `json:"keyword"`
	// Value is the move's benefit/cost ratio at selection time (0 with
	// Infinite=true when the cost side was zero).
	Value    float64 `json:"value"`
	Infinite bool    `json:"infinite,omitempty"`
	// F is the query's F-measure after the move.
	F float64 `json:"f"`
}

// SampleExplain is one PEBC partial-elimination probe.
type SampleExplain struct {
	// X is the target elimination percentage of U.
	X float64 `json:"x"`
	// Terms is the generated sample query.
	Terms []string `json:"terms"`
	// F is the sample's F-measure.
	F float64 `json:"f"`
}

// ExpandExplained runs the full expansion pipeline with the decision trail
// attached and returns both. It always runs the pipeline — the expansion
// cache is bypassed, because a cached result carries no trail; the pipeline
// is deterministic, so the returned Expansion is bit-identical to what
// Expand/ExpandTraced would return (and to what sits in the cache). tr may
// be nil and ctx is honored at round boundaries, exactly as in ExpandTraced.
func (e *Engine) ExpandExplained(ctx context.Context, raw string, opts ExpandOptions, tr *obs.Trace) (*Expansion, *Explain, error) {
	ex := &Explain{}
	exp, err := e.expandFull(ctx, raw, opts, tr, ex)
	if err != nil {
		return nil, nil, err
	}
	return exp, ex, nil
}

// finiteValue splits a possibly-infinite benefit/cost ratio into the JSON
// shape (value, infinite) — JSON has no Inf literal.
func finiteValue(v float64) (float64, bool) {
	if v > maxFiniteValue {
		return 0, true
	}
	return v, false
}

// maxFiniteValue is the largest float64; anything above it is +Inf.
const maxFiniteValue = 0x1.fffffffffffffp1023

// keywordExplainTable converts a core keyword table, attaching the
// F-if-added measure of each keyword against base (post-hoc: the solve has
// already finished, so these extra evaluations cannot influence it).
func keywordExplainTable(p *core.Problem, base Query, rows []core.KeywordTrail) []KeywordExplain {
	out := make([]KeywordExplain, len(rows))
	for i, r := range rows {
		v, inf := finiteValue(r.Value)
		out[i] = KeywordExplain{
			Keyword: r.Keyword, Benefit: r.Benefit, Cost: r.Cost,
			Value: v, Infinite: inf,
			F: p.FMeasure(base.With(r.Keyword)),
		}
	}
	return out
}

// explainKMeans converts the clustering trail.
func explainKMeans(k int, cl *cluster.Clustering, trail *cluster.Trail) *KMeansExplain {
	ke := &KMeansExplain{
		K:          k,
		Distortion: cl.Distortion,
		Iterations: cl.TotalIterations,
		Restarts:   make([]RestartExplain, len(trail.Restarts)),
	}
	for i, r := range trail.Restarts {
		ke.Restarts[i] = RestartExplain{
			Seed: r.Seed, Iterations: r.Iterations, Distortion: r.Distortion,
			Abandoned: r.Abandoned, Won: r.Won,
		}
	}
	return ke
}

// explainSearch copies the pruning counters into the wire shape.
func explainSearch(topK int, ps *search.PruneStats) SearchExplain {
	return SearchExplain{
		TopK:           topK,
		Pruned:         ps.Pruned,
		BlocksSkipped:  ps.BlocksSkipped,
		CursorAdvances: ps.CursorAdvances,
		DocsScored:     ps.DocsScored,
		DocsSkipped:    ps.DocsSkipped,
		Thresholds:     ps.Thresholds,
	}
}
