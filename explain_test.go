package qec

import (
	"context"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestExpandExplainedBitIdentical pins the EXPLAIN contract: collecting the
// decision trail must not change a single bit of the expansion output, across
// quality tiers, methods and the interleave path.
func TestExpandExplainedBitIdentical(t *testing.T) {
	optGrid := []ExpandOptions{
		{K: 2},
		{K: 2, Quality: QualityServing},
		{K: 2, Method: PEBC},
		{K: 2, Method: DeltaF},
		{K: 2, Method: ORExpansion},
		{K: 2, Unweighted: true},
		{K: 2, Parallel: true},
		{K: 2, Interleave: 2},
	}
	for _, opts := range optGrid {
		plain := seedEngine(t)
		explained := seedEngine(t)
		want, err := plain.Expand("apple", opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got, ex, err := explained.ExpandExplained(context.Background(), "apple", opts, nil)
		if err != nil {
			t.Fatalf("%+v explained: %v", opts, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%+v: explained expansion differs from plain\nplain:     %+v\nexplained: %+v", opts, want, got)
		}
		if ex == nil {
			t.Fatalf("%+v: nil explain", opts)
		}
		// The explain must also run identically to a cached second call.
		again, err := explained.Expand("apple", opts)
		if err != nil {
			t.Fatalf("%+v repeat: %v", opts, err)
		}
		if !reflect.DeepEqual(want, again) {
			t.Errorf("%+v: cached result diverged after explain", opts)
		}
	}
}

// TestExpandExplainedContent checks the trail actually carries the decision
// detail the endpoint promises.
func TestExpandExplainedContent(t *testing.T) {
	e := seedEngine(t)
	exp, ex, err := e.ExpandExplained(context.Background(), "apple", ExpandOptions{K: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ex.Query, []string{"apple"}; !reflect.DeepEqual(got, want) {
		t.Errorf("query = %v, want %v", got, want)
	}
	if ex.Method == "" || ex.Quality == "" {
		t.Errorf("method/quality labels empty: %q %q", ex.Method, ex.Quality)
	}
	if ex.Results <= 0 {
		t.Errorf("results = %d, want > 0", ex.Results)
	}
	if ex.KMeans == nil {
		t.Fatal("no kmeans leg")
	}
	if len(ex.KMeans.Restarts) == 0 {
		t.Error("no restart detail")
	}
	won := 0
	for _, r := range ex.KMeans.Restarts {
		if r.Won {
			won++
			if r.Abandoned {
				t.Error("winning restart marked abandoned")
			}
			if r.Distortion != ex.KMeans.Distortion {
				t.Errorf("winner distortion %v != clustering distortion %v",
					r.Distortion, ex.KMeans.Distortion)
			}
		}
	}
	if won != 1 {
		t.Errorf("won restarts = %d, want exactly 1", won)
	}
	if len(ex.Clusters) != len(exp.Queries) {
		t.Fatalf("clusters = %d, queries = %d", len(ex.Clusters), len(exp.Queries))
	}
	for i, cx := range ex.Clusters {
		if cx.Cluster != i {
			t.Errorf("cluster %d: ordinal %d", i, cx.Cluster)
		}
		if cx.Size <= 0 {
			t.Errorf("cluster %d: size %d", i, cx.Size)
		}
		if !reflect.DeepEqual(cx.Label, exp.Queries[i].Terms) {
			t.Errorf("cluster %d: label %v != query %v", i, cx.Label, exp.Queries[i].Terms)
		}
		if len(cx.Pool) == 0 {
			t.Errorf("cluster %d: empty candidate pool", i)
		}
		// Picked keywords must align with the expanded query's extra terms.
		extra := 0
		for _, term := range exp.Queries[i].Terms {
			if term != "apple" {
				extra++
			}
		}
		if len(cx.Picked) != extra {
			t.Errorf("cluster %d: picked %d, query has %d extra terms", i, len(cx.Picked), extra)
		}
		for _, p := range cx.Picked {
			found := false
			for _, term := range exp.Queries[i].Terms {
				if term == p.Keyword {
					found = true
				}
			}
			if !found {
				t.Errorf("cluster %d: picked %q not in query %v", i, p.Keyword, exp.Queries[i].Terms)
			}
		}
		for _, r := range cx.Rejected {
			for _, term := range exp.Queries[i].Terms {
				if term == r.Keyword {
					t.Errorf("cluster %d: rejected %q is in the query", i, r.Keyword)
				}
			}
		}
	}
	// The wire shape must survive JSON round-tripping (no Inf/NaN leaks).
	raw, err := json.Marshal(ex)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Explain
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
}

// TestExpandExplainedPEBCSamples checks the PEBC leg records its
// partial-elimination probes.
func TestExpandExplainedPEBCSamples(t *testing.T) {
	e := seedEngine(t)
	_, ex, err := e.ExpandExplained(context.Background(), "apple", ExpandOptions{K: 2, Method: PEBC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, cx := range ex.Clusters {
		samples += len(cx.Samples)
		for _, s := range cx.Samples {
			if s.X < 0 || s.X > 100 {
				t.Errorf("sample x = %v out of range", s.X)
			}
		}
	}
	if samples == 0 {
		t.Error("no PEBC samples recorded")
	}
}

// TestExpandExplainedInterleaveNote checks the interleave path degrades
// gracefully: cluster summaries without solver trails, plus a note.
func TestExpandExplainedInterleaveNote(t *testing.T) {
	e := seedEngine(t)
	exp, ex, err := e.ExpandExplained(context.Background(), "apple", ExpandOptions{K: 2, Interleave: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Notes) == 0 {
		t.Error("interleave run carries no explanatory note")
	}
	if len(ex.Clusters) != len(exp.Queries) {
		t.Errorf("clusters = %d, queries = %d", len(ex.Clusters), len(exp.Queries))
	}
	for i, cx := range ex.Clusters {
		if len(cx.Pool) != 0 || len(cx.Steps) != 0 {
			t.Errorf("cluster %d: interleave run has solver trail", i)
		}
		if !reflect.DeepEqual(cx.Label, exp.Queries[i].Terms) {
			t.Errorf("cluster %d: label %v != query %v", i, cx.Label, exp.Queries[i].Terms)
		}
	}
}

func TestFiniteValue(t *testing.T) {
	if v, inf := finiteValue(2.5); v != 2.5 || inf {
		t.Errorf("finiteValue(2.5) = %v, %v", v, inf)
	}
	if v, inf := finiteValue(math.Inf(1)); v != 0 || !inf {
		t.Errorf("finiteValue(+Inf) = %v, %v", v, inf)
	}
	if v, inf := finiteValue(maxFiniteValue); v != maxFiniteValue || inf {
		t.Errorf("finiteValue(max) = %v, %v", v, inf)
	}
}
